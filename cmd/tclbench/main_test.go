package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"bittactical/internal/bench"
)

func writeFile(t *testing.T, dir, name string, recs ...bench.Record) {
	t.Helper()
	f := &bench.File{Schema: bench.Schema, GoMaxProcs: 1, NumCPU: 1, Benchmarks: recs}
	if err := f.Write(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
}

func r(id string, ns float64, allocs int64) bench.Record {
	return bench.Record{ID: id, GoMaxProcs: 1, NsPerOp: ns, AllocsPerOp: allocs, Iterations: 1}
}

func serveRec(id string, p50 float64, hitRate float64) bench.Record {
	return bench.Record{
		ID: id, GoMaxProcs: 1, NsPerOp: p50, AllocsPerOp: 1000, Iterations: 1,
		P50Ns: p50, P99Ns: 2 * p50, RPS: 100, CoalesceHitRate: hitRate,
	}
}

// fixture lays out matching baseline and current directories covering all
// three suites, with the kernel suite carrying the interesting rows.
func fixture(t *testing.T, kernelBase, kernelCur bench.Record) (baseDir, curDir string) {
	t.Helper()
	baseDir, curDir = t.TempDir(), t.TempDir()
	for _, d := range []string{baseDir, curDir} {
		writeFile(t, d, "BENCH_sched.json", r("sched/L4<1,2>/algorithm1/kernel", 500, 0))
		writeFile(t, d, "BENCH_sim.json", r("fig8a/j1", 1e9, 50000))
		writeFile(t, d, "BENCH_serve.json", serveRec("serve/hot", 1e7, 0.95))
	}
	writeFile(t, baseDir, "BENCH_kernel.json", kernelBase)
	writeFile(t, curDir, "BENCH_kernel.json", kernelCur)
	return baseDir, curDir
}

// TestGateFailsOnInjectedRegression is the end-to-end negative test the
// issue requires: a deliberately injected >10% regression must exit 1.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 120, 0)) // 20% slower
	var out, errOut bytes.Buffer
	code := run([]string{"-compare", "-dir", baseDir, "-current", curDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "kernel/lanes=16/swar") || !strings.Contains(errOut.String(), "ns/op") {
		t.Fatalf("failure not attributed: %s", errOut.String())
	}
}

// TestGatePassesWithinThreshold: the same layout inside threshold exits 0.
func TestGatePassesWithinThreshold(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 105, 0))
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, errOut.String())
	}
}

// TestGateIDFilter: -ids restricts which baseline rows gate, so a
// regression outside the filter is ignored and one inside still fails.
func TestGateIDFilter(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 200, 0))
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", "-dir", baseDir, "-current", curDir, "-ids", "fig8a,sched/"}, &out, &errOut); code != 0 {
		t.Fatalf("filtered-out regression still failed: %s", errOut.String())
	}
	if code := run([]string{"-compare", "-dir", baseDir, "-current", curDir, "-ids", "kernel/"}, &out, &errOut); code != 1 {
		t.Fatalf("filtered-in regression passed")
	}
}

// TestGateSuiteRestriction: -suite compares only that suite's file.
func TestGateSuiteRestriction(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 200, 0))
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", "-suite", "sim", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 0 {
		t.Fatalf("sim-only compare hit the kernel regression: %s", errOut.String())
	}
	if code := run([]string{"-compare", "-suite", "kernel", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 1 {
		t.Fatalf("kernel-only compare missed the regression")
	}
	if code := run([]string{"-compare", "-suite", "nope", "-dir", baseDir}, &out, &errOut); code != 2 {
		t.Fatalf("unknown suite not a usage error")
	}
}

// TestGateMissingRowFails: dropping a benchmark from the current run is a
// gate failure, not a silent pass.
func TestGateMissingRowFails(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=32/swar", 100, 0)) // different ID: 16-lane row missing
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", "-suite", "kernel", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 1 {
		t.Fatalf("missing baseline row passed the gate")
	}
	if !strings.Contains(errOut.String(), "missing") {
		t.Fatalf("missing row not reported: %s", errOut.String())
	}
}

// TestRetryMerge pins the noise-retry helpers: only all-ns failures
// qualify for a re-measure, and the merge keeps the fastest time per
// record while never touching allocation counts.
func TestRetryMerge(t *testing.T) {
	nsReg := bench.Result{Regressions: []bench.Regression{{ID: "a", Metric: "ns/op"}}}
	allocReg := bench.Result{Regressions: []bench.Regression{
		{ID: "a", Metric: "ns/op"}, {ID: "b", Metric: "allocs/op"},
	}}
	if !nsOnly(nsReg) || nsOnly(allocReg) || nsOnly(bench.Result{}) {
		t.Fatal("nsOnly misclassifies")
	}

	cur := &bench.File{Benchmarks: []bench.Record{r("a", 200, 10), r("b", 100, 10)}}
	again := &bench.File{Benchmarks: []bench.Record{
		{ID: "a", GoMaxProcs: 1, NsPerOp: 150, AllocsPerOp: 99},
		{ID: "b", GoMaxProcs: 1, NsPerOp: 300, AllocsPerOp: 10},
	}}
	mergeBestNs(cur, again)
	if cur.Benchmarks[0].NsPerOp != 150 || cur.Benchmarks[0].AllocsPerOp != 10 {
		t.Fatalf("record a after merge: %+v, want ns 150 / allocs 10", cur.Benchmarks[0])
	}
	if cur.Benchmarks[1].NsPerOp != 100 {
		t.Fatalf("record b took the slower re-measure: %+v", cur.Benchmarks[1])
	}
}

// TestUsageErrors: no action and unparseable flags are usage errors.
func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-op invocation exit %d, want 2", code)
	}
	if code := run([]string{"-threshold", "x"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
}

// TestGateServeMetrics: the serve suite's latency percentiles gate under
// the ns policy and its coalesce hit rate gates on every host.
func TestGateServeMetrics(t *testing.T) {
	baseDir, curDir := fixture(t,
		r("kernel/lanes=16/swar", 100, 0),
		r("kernel/lanes=16/swar", 100, 0))
	var out, errOut bytes.Buffer

	// 2x p99: latency regression.
	slow := serveRec("serve/hot", 1e7, 0.95)
	slow.P99Ns *= 2
	writeFile(t, curDir, "BENCH_serve.json", slow)
	if code := run([]string{"-compare", "-suite", "serve", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 1 {
		t.Fatalf("p99 regression passed the gate: %s", out.String())
	}
	if !strings.Contains(errOut.String(), "p99") {
		t.Fatalf("p99 regression not attributed: %s", errOut.String())
	}

	// Hit rate collapse: gated even across host shapes.
	errOut.Reset()
	cold := serveRec("serve/hot", 1e7, 0.40)
	cold.GoMaxProcs = 8 // different host: ns skipped, hit rate still gates
	writeFile(t, curDir, "BENCH_serve.json", cold)
	if code := run([]string{"-compare", "-suite", "serve", "-dir", baseDir, "-current", curDir}, &out, &errOut); code != 1 {
		t.Fatalf("hit-rate collapse passed the gate: %s", out.String())
	}
	if !strings.Contains(errOut.String(), "coalesce_hit_rate") {
		t.Fatalf("hit-rate regression not attributed: %s", errOut.String())
	}
}

// promoteFixture writes one clean multi-core artifact set (all four
// suites) into a directory.
func promoteFixture(t *testing.T, gomaxprocs, numCPU int, contended bool) string {
	t.Helper()
	dir := t.TempDir()
	for _, s := range bench.Suites {
		f := &bench.File{
			Schema: bench.Schema, GoMaxProcs: gomaxprocs, NumCPU: numCPU,
			Benchmarks: []bench.Record{{
				ID: s.Name + "/row", GoMaxProcs: gomaxprocs, NsPerOp: 100,
				AllocsPerOp: 10, Iterations: 1, Contended: contended,
			}},
		}
		if err := f.Write(filepath.Join(dir, s.File)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestPromoteAdoptsCleanArtifacts: -promote validates and copies CI
// baselines; the single-core host can adopt but never fabricate them.
func TestPromoteAdoptsCleanArtifacts(t *testing.T) {
	src := promoteFixture(t, 4, 8, false)
	dst := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run([]string{"-promote", src, "-dir", dst}, &out, &errOut); code != 0 {
		t.Fatalf("clean promote exit %d: %s", code, errOut.String())
	}
	for _, s := range bench.Suites {
		f, err := bench.Load(filepath.Join(dst, s.File))
		if err != nil {
			t.Fatalf("promoted %s unreadable: %v", s.File, err)
		}
		if f.GoMaxProcs != 4 {
			t.Errorf("promoted %s lost its host shape: %+v", s.File, f)
		}
	}

	// A partial artifact set promotes what exists and skips the rest.
	partial := t.TempDir()
	f, _ := bench.Load(filepath.Join(src, "BENCH_serve.json"))
	if err := f.Write(filepath.Join(partial, "BENCH_serve.json")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-promote", partial, "-dir", t.TempDir()}, &out, &errOut); code != 0 {
		t.Fatalf("partial promote exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Fatalf("partial promote did not report skips: %s", out.String())
	}
}

// TestPromoteRefusesTaintedArtifacts: single-core, time-sliced, or
// contended recordings must not become committed baselines.
func TestPromoteRefusesTaintedArtifacts(t *testing.T) {
	cases := map[string]string{
		"single-core": promoteFixture(t, 1, 8, false),
		"time-sliced": promoteFixture(t, 8, 1, false),
		"contended":   promoteFixture(t, 4, 8, true),
	}
	for name, src := range cases {
		var out, errOut bytes.Buffer
		dst := t.TempDir()
		if code := run([]string{"-promote", src, "-dir", dst}, &out, &errOut); code != 1 {
			t.Errorf("%s promote exit %d, want 1 (%s)", name, code, errOut.String())
		}
		if !strings.Contains(errOut.String(), "refusing to promote") {
			t.Errorf("%s: refusal not reported: %s", name, errOut.String())
		}
		if _, err := bench.Load(filepath.Join(dst, "BENCH_kernel.json")); err == nil {
			t.Errorf("%s: tainted baseline was written anyway", name)
		}
	}

	// An empty artifact directory is an error, not a silent success.
	var out, errOut bytes.Buffer
	if code := run([]string{"-promote", t.TempDir(), "-dir", t.TempDir()}, &out, &errOut); code != 1 {
		t.Errorf("empty promote exit %d, want 1", code)
	}
}
