package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	_ "bittactical/internal/backend/dstripes" // register the plugin back-end
	"bittactical/internal/fixed"
	"bittactical/internal/metrics"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// maxBodyBytes bounds request bodies; every valid request is a small JSON
// document.
const maxBodyBytes = 1 << 20

// server holds the evaluation service's shared state: the in-flight
// semaphore that bounds concurrent sweeps (each one saturates the engine's
// worker pool, so admitting more than a handful just queues them on the
// scheduler) and the request-level instruments.
type server struct {
	sem            chan struct{}
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	parallelism    int

	requests *metrics.Counter
	rejected *metrics.Counter
	failures *metrics.Counter
	timeouts *metrics.Counter
	inflight *metrics.Gauge
	latency  *metrics.Histogram
}

func newServer(maxInFlight int, defaultTimeout, maxTimeout time.Duration, parallelism int) *server {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	return &server{
		sem:            make(chan struct{}, maxInFlight),
		defaultTimeout: defaultTimeout,
		maxTimeout:     maxTimeout,
		parallelism:    parallelism,
		requests:       metrics.Default.Counter("serve_requests_total"),
		rejected:       metrics.Default.Counter("serve_requests_rejected_total"),
		failures:       metrics.Default.Counter("serve_requests_failed_total"),
		timeouts:       metrics.Default.Counter("serve_requests_timeout_total"),
		inflight:       metrics.Default.Gauge("serve_inflight_requests"),
		latency:        metrics.Default.Histogram("serve_request_latency"),
	}
}

// routes wires the service surface: the two evaluation endpoints behind the
// in-flight limiter, plus the probes.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/simulate", s.limited(s.handleSimulate))
	mux.HandleFunc("POST /v1/schedule", s.limited(s.handleSchedule))
	return mux
}

// limited applies the bounded in-flight semaphore (rejecting with 503 when
// full rather than queueing — a sweep is seconds of CPU, and a deep queue
// only converts overload into timeouts) and records request metrics.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.Inc()
			writeError(w, http.StatusServiceUnavailable, "server at capacity: too many in-flight requests")
			return
		}
		defer func() { <-s.sem }()
		s.inflight.Inc()
		defer s.inflight.Dec()
		s.requests.Inc()
		start := time.Now()
		h(w, r)
		s.latency.Observe(time.Since(start))
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := metrics.Default.WriteJSON(w); err != nil {
		// Headers are gone; nothing left to do but note the failure.
		s.failures.Inc()
	}
}

// requestContext derives the per-request deadline: the client's timeout_ms
// when given, the server default otherwise, clamped to the server maximum.
func (s *server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.defaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.maxTimeout {
		d = s.maxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// configSpec names one accelerator configuration of the Table-2 family.
type configSpec struct {
	// Backend: "dense" (DaDianNao++ baseline), "front-end" (weight skipping
	// with a bit-parallel back-end), or any registered back-end name
	// (backend.Names(): "TCLp", "TCLe", "dstripes-sm", ...).
	Backend string `json:"backend"`
	// Pattern is a connectivity pattern label (sched.KnownPatternNames);
	// required for "front-end", optional for the serial back-ends (empty =
	// no weight skipping, the Pragmatic/Dynamic-Stripes-like rows).
	Pattern string `json:"pattern,omitempty"`
	// Width is the datapath width: 16 (default) or 8.
	Width int `json:"width,omitempty"`
}

func (c configSpec) build() (arch.Config, error) {
	var p sched.Pattern
	if c.Pattern != "" {
		var err error
		p, err = sched.ByName(c.Pattern)
		if err != nil {
			return arch.Config{}, err
		}
	}
	var cfg arch.Config
	switch strings.ToLower(c.Backend) {
	case "dense", "dadiannao++", "dadiannao":
		if c.Pattern != "" {
			return arch.Config{}, fmt.Errorf("backend %q takes no pattern", c.Backend)
		}
		cfg = arch.DaDianNaoPP()
	case "front-end", "frontend", "fe":
		if c.Pattern == "" {
			return arch.Config{}, fmt.Errorf("backend %q requires a pattern", c.Backend)
		}
		cfg = arch.FrontEndOnly(p)
	default:
		// Everything else resolves through the process-wide back-end
		// registry, so plugin back-ends become reachable over the API by
		// registering themselves — no handler changes.
		be, err := backend.Lookup(c.Backend)
		if err != nil {
			return arch.Config{}, fmt.Errorf("unknown backend %q (want dense, front-end, or one of: %s)",
				c.Backend, strings.Join(backend.Names(), ", "))
		}
		cfg = arch.NewTCLBackend(p, be)
	}
	switch c.Width {
	case 0, 16:
	case 8:
		cfg = cfg.WithWidth(fixed.W8)
	default:
		return arch.Config{}, fmt.Errorf("unsupported width %d (want 8 or 16)", c.Width)
	}
	return cfg, nil
}

// defaultConfigs is the sweep run when a request names none: the dense
// baseline and both serial back-ends under the paper's headline pattern.
func defaultConfigs() []configSpec {
	return []configSpec{
		{Backend: "dense"},
		{Backend: "tclp", Pattern: "T8<2,5>"},
		{Backend: "tcle", Pattern: "T8<2,5>"},
	}
}

// modelSpec is the shared model-selection part of both endpoints.
type modelSpec struct {
	Model        string  `json:"model"`
	ChannelScale float64 `json:"channel_scale,omitempty"`
	SpatialScale float64 `json:"spatial_scale,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	ActSeed      int64   `json:"act_seed,omitempty"`
}

func (ms modelSpec) build() (*nn.Model, int64, error) {
	if ms.Model == "" {
		return nil, 0, errors.New("missing model (want one of " + strings.Join(nn.ModelNames, ", ") + ")")
	}
	zoo := nn.DefaultZoo()
	if ms.ChannelScale > 0 {
		zoo.ChannelScale = ms.ChannelScale
	}
	if ms.SpatialScale > 0 {
		zoo.SpatialScale = ms.SpatialScale
	}
	if ms.Seed != 0 {
		zoo.Seed = ms.Seed
	}
	m, err := nn.BuildModel(ms.Model, zoo)
	if err != nil {
		return nil, 0, err
	}
	actSeed := ms.ActSeed
	if actSeed == 0 {
		actSeed = 7
	}
	return m, actSeed, nil
}

type simulateRequest struct {
	modelSpec
	Configs     []configSpec `json:"configs,omitempty"`
	Parallelism int          `json:"parallelism,omitempty"`
	TimeoutMs   int64        `json:"timeout_ms,omitempty"`
}

type layerResponse struct {
	Name        string `json:"name"`
	Cycles      int64  `json:"cycles"`
	DenseCycles int64  `json:"dense_cycles"`
	MACs        int64  `json:"macs"`
}

type configResponse struct {
	Name        string          `json:"name"`
	Cycles      int64           `json:"cycles"`
	DenseCycles int64           `json:"dense_cycles"`
	Speedup     float64         `json:"speedup"`
	Layers      []layerResponse `json:"layers"`
}

type simulateResponse struct {
	Model     string           `json:"model"`
	Configs   []configResponse `json:"configs"`
	ElapsedMs float64          `json:"elapsed_ms"`
}

func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if !decodeRequest(w, r, &req) {
		s.failures.Inc()
		return
	}
	m, actSeed, err := req.build()
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	specs := req.Configs
	if len(specs) == 0 {
		specs = defaultConfigs()
	}
	cfgs := make([]arch.Config, len(specs))
	for i, spec := range specs {
		if cfgs[i], err = spec.build(); err != nil {
			s.failures.Inc()
			writeError(w, http.StatusBadRequest, fmt.Sprintf("configs[%d]: %v", i, err))
			return
		}
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	opts := sim.Options{Parallelism: s.parallelism}
	if req.Parallelism > 0 {
		opts.Parallelism = req.Parallelism
	}
	acts := m.GenerateActs(actSeed)
	start := time.Now()
	resp := simulateResponse{Model: m.Name}
	// One engine invocation for the whole sweep: every config's work shares
	// one worker pool (independent configs overlap) and one plane cache pass
	// (configs with a common back-end and width reuse each layer's
	// activation cost plane instead of rebuilding it).
	results, err := sim.SimulateSweepContext(ctx, cfgs, m, acts, opts)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	for _, res := range results {
		cr := configResponse{
			Name:        res.Config,
			Cycles:      res.TotalCycles(),
			DenseCycles: res.TotalDenseCycles(),
			Speedup:     res.Speedup(),
		}
		for _, l := range res.Layers {
			cr.Layers = append(cr.Layers, layerResponse{
				Name: l.Name, Cycles: l.Cycles, DenseCycles: l.DenseCycles, MACs: l.MACs,
			})
		}
		resp.Configs = append(resp.Configs, cr)
	}
	resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

type scheduleRequest struct {
	modelSpec
	Pattern   string `json:"pattern"`
	Algorithm string `json:"algorithm,omitempty"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
}

type scheduleLayerResponse struct {
	Name       string  `json:"name"`
	Filters    int     `json:"filters"`
	DenseCols  int     `json:"dense_columns"`
	Columns    int     `json:"columns"`
	Compaction float64 `json:"compaction"`
}

type scheduleResponse struct {
	Model      string                  `json:"model"`
	Pattern    string                  `json:"pattern"`
	Algorithm  string                  `json:"algorithm"`
	Layers     []scheduleLayerResponse `json:"layers"`
	DenseCols  int                     `json:"dense_columns"`
	Columns    int                     `json:"columns"`
	Compaction float64                 `json:"compaction"`
	ElapsedMs  float64                 `json:"elapsed_ms"`
}

func algorithmByName(name string) (sched.Algorithm, error) {
	switch strings.ToLower(name) {
	case "", "algorithm1", "alg1":
		return sched.Algorithm1, nil
	case "greedy":
		return sched.GreedySimple, nil
	case "matching":
		return sched.Matching, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want algorithm1, greedy, or matching)", name)
}

// handleSchedule runs the offline software front-end alone: every filter
// group of the model scheduled under the pattern, reported as schedule
// columns vs dense steps per layer — the compaction a deployment would bake
// into its weight-scratchpad images.
func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req scheduleRequest
	if !decodeRequest(w, r, &req) {
		s.failures.Inc()
		return
	}
	m, actSeed, err := req.build()
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Pattern == "" {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, "missing pattern (want one of "+strings.Join(sched.KnownPatternNames(), ", ")+")")
		return
	}
	p, err := sched.ByName(req.Pattern)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	alg, err := algorithmByName(req.Algorithm)
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	lws, err := m.Lowered(16, m.GenerateActs(actSeed))
	if err != nil {
		s.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	resp := scheduleResponse{Model: m.Name, Pattern: p.Name, Algorithm: alg.String()}
	for _, lw := range lws {
		pad := make([]bool, lw.Steps*lw.Lanes)
		for st := 0; st < lw.Steps; st++ {
			for ln := 0; ln < lw.Lanes; ln++ {
				pad[st*lw.Lanes+ln] = lw.IsPad(st, ln)
			}
		}
		lr := scheduleLayerResponse{Name: lw.Name, Filters: lw.Filters}
		for f0 := 0; f0 < lw.Filters; f0 += 16 {
			// Scheduling one group is milliseconds; the claim-grain check
			// keeps a large model's sweep cancellable between groups.
			if err := ctx.Err(); err != nil {
				s.writeEngineError(w, err)
				return
			}
			f1 := min(f0+16, lw.Filters)
			group := make([]sched.Filter, f1-f0)
			for i := range group {
				group[i] = sched.NewFilter(lw.Lanes, lw.Steps, lw.FilterRow(f0+i), pad)
			}
			for _, sc := range sched.Shared.ScheduleGroup(group, p, alg) {
				lr.Columns += sc.Len()
				lr.DenseCols += lw.Steps
			}
		}
		if lr.Columns > 0 {
			lr.Compaction = float64(lr.DenseCols) / float64(lr.Columns)
		}
		resp.Layers = append(resp.Layers, lr)
		resp.Columns += lr.Columns
		resp.DenseCols += lr.DenseCols
	}
	if resp.Columns > 0 {
		resp.Compaction = float64(resp.DenseCols) / float64(resp.Columns)
	}
	resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// writeEngineError maps a cancelled engine run to the response the client
// can act on: 504 for an expired deadline, 408 for a request the client
// itself abandoned.
func (s *server) writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "simulation exceeded the request deadline")
	case errors.Is(err, context.Canceled):
		// The client disconnected; the status code is for the log only.
		s.failures.Inc()
		writeError(w, http.StatusRequestTimeout, "request cancelled")
	default:
		s.failures.Inc()
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
