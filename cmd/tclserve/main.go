// Command tclserve is the evaluation service: the paper's offline scheduler
// and design-family simulator behind an HTTP API, so sweep-heavy workloads
// (re-simulating models under many pattern/back-end configurations) run as
// traffic against a long-lived process that amortizes the schedule cache
// instead of as repeated batch jobs.
//
//	tclserve -addr :8371
//
//	POST /v1/simulate  {"model":"AlexNet-ES","configs":[{"backend":"tcle","pattern":"T8<2,5>"}]}
//	                   add "stream": true for NDJSON per-layer streaming
//	POST /v1/schedule  {"model":"MobileNet","pattern":"T8<2,5>"}
//	POST /v1/shard     coordinator-to-worker leg of shard mode
//	GET  /v1/models    registered workload names (JSON)
//	GET  /healthz      liveness probe
//	GET  /metrics      engine + service counters (JSON)
//
// Identical concurrent requests coalesce onto one engine run, and finished
// sweeps are retained in a byte-budgeted LRU (-cache-budget) keyed by the
// request's content fingerprint, so repeat sweeps are served without
// touching the engine. With -workers url,url,… the process becomes a
// coordinator: each sweep's (config, layer) grid is split across the named
// worker tclserves — layers packed by predicted cost (-shard-partition lpt)
// — and merged deterministically (bit-identical to a single-process run at
// any worker count). A failed worker's slice is re-dispatched to survivors
// (-shard-retries/-shard-backoff), and background /healthz probes
// (-health-interval) keep known-dead workers out of new partitions, so a
// worker killed mid-sweep degrades capacity instead of failing requests.
//
// Requests honor a per-request deadline (timeout_ms, clamped to
// -max-timeout): the engine's workers stop claiming work when it expires
// and the request fails with 504 instead of burning the pool. In-flight
// work is bounded by -max-inflight (excess requests get 503). SIGTERM or
// SIGINT drains in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bittactical/internal/serve"
	_ "bittactical/internal/workloads/attention" // register the transformer-era workload zoo
)

func main() {
	var (
		addr        = flag.String("addr", ":8371", "listen address (host:port; port 0 picks a free port)")
		maxInFlight = flag.Int("max-inflight", 4, "max concurrent simulate/schedule requests (excess get 503)")
		defTimeout  = flag.Duration("timeout", time.Minute, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested deadlines")
		drain       = flag.Duration("drain", 15*time.Second, "how long to drain in-flight requests on shutdown")
		par         = flag.Int("j", 0, "engine worker parallelism per request (0 = GOMAXPROCS)")
		cacheBudget = flag.Int64("cache-budget", serve.DefaultCacheBudget,
			"finished-result cache budget in bytes (0 = default, negative disables retention)")
		workers = flag.String("workers", "",
			"comma-separated worker base URLs; non-empty runs this process as a shard coordinator")
		shardRetries = flag.Int("shard-retries", 0,
			"max re-dispatch rounds after a shard worker failure (0 = default of 2, negative disables failover)")
		shardBackoff = flag.Duration("shard-backoff", 0,
			"pause before the first re-dispatch round, doubling per round (0 = default of 50ms, negative disables)")
		healthInterval = flag.Duration("health-interval", 5*time.Second,
			"period of the coordinator's background worker /healthz probes (<= 0 disables probing)")
		partition = flag.String("shard-partition", "lpt",
			"layer partitioning strategy: lpt (cost-balanced) or roundrobin")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxInFlight:    *maxInFlight,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Parallelism:    *par,
		CacheBudget:    *cacheBudget,
		ShardRetries:   *shardRetries,
		ShardBackoff:   *shardBackoff,
		HealthInterval: *healthInterval,
		Partition:      *partition,
	}
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(w), "/")); w != "" {
				cfg.Workers = append(cfg.Workers, w)
			}
		}
	}
	s := serve.New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tclserve:", err)
		os.Exit(1)
	}
	// The resolved address line is load-bearing: the smoke test (and any
	// operator using port 0) learns the bound port from it.
	log.Printf("tclserve: listening on %s", ln.Addr())
	if len(cfg.Workers) > 0 {
		log.Printf("tclserve: coordinating %d shard workers: %s", len(cfg.Workers), strings.Join(cfg.Workers, ", "))
	}

	srv := &http.Server{
		Handler:           s.Routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("tclserve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills immediately
	log.Printf("tclserve: signal received, draining in-flight requests (up to %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("tclserve: shutdown: %v", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tclserve: %v", err)
		os.Exit(1)
	}
	log.Printf("tclserve: drained cleanly")
}
