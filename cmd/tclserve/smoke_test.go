package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke builds the real tclserve binary, starts it on an ephemeral
// port, exercises /healthz, /v1/simulate, and /metrics over real TCP, then
// SIGTERMs it and requires a clean drain. Gated behind TCL_SERVE_SMOKE=1
// (run via `make serve-smoke`) so ordinary `go test ./...` stays hermetic.
func TestServeSmoke(t *testing.T) {
	if os.Getenv("TCL_SERVE_SMOKE") != "1" {
		t.Skip("set TCL_SERVE_SMOKE=1 (or run `make serve-smoke`) to exercise the real binary")
	}

	bin := filepath.Join(t.TempDir(), "tclserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server logs its resolved address; everything after that line is
	// drained in the background so the child never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	var baseURL string
	for sc.Scan() {
		line := sc.Text()
		t.Logf("tclserve: %s", line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			baseURL = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("server exited without logging its address (scan err: %v)", sc.Err())
	}
	logRest := make(chan struct{})
	go func() {
		defer close(logRest)
		for sc.Scan() {
			t.Logf("tclserve: %s", sc.Text())
		}
	}()

	get := func(path string) (*http.Response, error) { return http.Get(baseURL + path) }

	// Liveness.
	resp, err := get("/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}

	// One real simulation.
	body := `{"model":"AlexNet-ES","channel_scale":0.1,"spatial_scale":0.25,"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]}`
	sresp, err := http.Post(baseURL+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	var sim simulateResponse
	err = json.NewDecoder(sresp.Body).Decode(&sim)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("POST /v1/simulate = %d (decode err %v)", sresp.StatusCode, err)
	}
	if len(sim.Configs) != 1 || sim.Configs[0].Cycles == 0 {
		t.Fatalf("empty simulate response: %+v", sim)
	}
	fmt.Printf("smoke: %s %s: %d cycles, speedup %.2f\n",
		sim.Model, sim.Configs[0].Name, sim.Configs[0].Cycles, sim.Configs[0].Speedup)

	// Metrics must show engine activity.
	mresp, err := get("/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var snap map[string]json.RawMessage
	err = json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("GET /metrics = %d (decode err %v)", mresp.StatusCode, err)
	}
	for _, name := range []string{"serve_requests_total", "sim_pool_items_total", "sched_cache_misses"} {
		var v int64
		if err := json.Unmarshal(snap[name], &v); err != nil || v == 0 {
			t.Errorf("metric %s = %s (err %v), want nonzero", name, snap[name], err)
		}
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("tclserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("tclserve did not exit within 15s of SIGTERM")
	}
	<-logRest
}
