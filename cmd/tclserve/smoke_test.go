package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bittactical/internal/serve"
)

// TestServeSmoke builds the real tclserve binary, starts it on an ephemeral
// port, exercises /healthz, /v1/simulate, and /metrics over real TCP, then
// SIGTERMs it and requires a clean drain. Gated behind TCL_SERVE_SMOKE=1
// (run via `make serve-smoke`) so ordinary `go test ./...` stays hermetic.
func TestServeSmoke(t *testing.T) {
	if os.Getenv("TCL_SERVE_SMOKE") != "1" {
		t.Skip("set TCL_SERVE_SMOKE=1 (or run `make serve-smoke`) to exercise the real binary")
	}

	bin := filepath.Join(t.TempDir(), "tclserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server logs its resolved address; everything after that line is
	// drained in the background so the child never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	var baseURL string
	for sc.Scan() {
		line := sc.Text()
		t.Logf("tclserve: %s", line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			baseURL = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("server exited without logging its address (scan err: %v)", sc.Err())
	}
	logRest := make(chan struct{})
	go func() {
		defer close(logRest)
		for sc.Scan() {
			t.Logf("tclserve: %s", sc.Text())
		}
	}()

	get := func(path string) (*http.Response, error) { return http.Get(baseURL + path) }

	// Liveness.
	resp, err := get("/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}

	// One real simulation.
	body := `{"model":"AlexNet-ES","channel_scale":0.1,"spatial_scale":0.25,"configs":[{"backend":"tcle","pattern":"T8<2,5>"}]}`
	sresp, err := http.Post(baseURL+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	var sim serve.SimulateResponse
	err = json.NewDecoder(sresp.Body).Decode(&sim)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("POST /v1/simulate = %d (decode err %v)", sresp.StatusCode, err)
	}
	if len(sim.Configs) != 1 || sim.Configs[0].Cycles == 0 {
		t.Fatalf("empty simulate response: %+v", sim)
	}
	fmt.Printf("smoke: %s %s: %d cycles, speedup %.2f\n",
		sim.Model, sim.Configs[0].Name, sim.Configs[0].Cycles, sim.Configs[0].Speedup)

	// Metrics must show engine activity.
	mresp, err := get("/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var snap map[string]json.RawMessage
	err = json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("GET /metrics = %d (decode err %v)", mresp.StatusCode, err)
	}
	for _, name := range []string{"serve_requests_total", "sim_pool_items_total", "sched_cache_misses"} {
		var v int64
		if err := json.Unmarshal(snap[name], &v); err != nil || v == 0 {
			t.Errorf("metric %s = %s (err %v), want nonzero", name, snap[name], err)
		}
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("tclserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("tclserve did not exit within 15s of SIGTERM")
	}
	<-logRest
}

// startServe launches a freshly-built tclserve binary with the given extra
// flags, scrapes its resolved listen address off stderr, and registers a
// kill on test cleanup. It returns the base URL and the process handle (so
// failover scenarios can kill a worker mid-run). The rest of the log is
// drained in the background.
func startServe(t *testing.T, bin string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		t.Logf("tclserve%v: %s", extra, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			go func() {
				for sc.Scan() {
				}
			}()
			return "http://" + strings.TrimSpace(line[i+len("listening on "):]), cmd
		}
	}
	t.Fatalf("server exited without logging its address (scan err: %v)", sc.Err())
	return "", nil
}

// TestShardSmoke is the distributed-mode load smoke: real binaries, real
// TCP. A coordinator fronting two shard workers must return byte-identical
// results to a standalone single-process server, and a short tclload run
// against the coordinator must complete with zero errors and a nonzero
// coalesce hit rate. Gated behind TCL_SHARD_SMOKE=1 (`make shard-smoke`).
func TestShardSmoke(t *testing.T) {
	if os.Getenv("TCL_SHARD_SMOKE") != "1" {
		t.Skip("set TCL_SHARD_SMOKE=1 (or run `make shard-smoke`) to exercise shard mode end to end")
	}

	dir := t.TempDir()
	serveBin := filepath.Join(dir, "tclserve")
	loadBin := filepath.Join(dir, "tclload")
	if out, err := exec.Command("go", "build", "-o", serveBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build tclserve: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", loadBin, "../tclload").CombinedOutput(); err != nil {
		t.Fatalf("go build tclload: %v\n%s", err, out)
	}

	solo, _ := startServe(t, serveBin)
	w1, _ := startServe(t, serveBin)
	w2, w2cmd := startServe(t, serveBin)
	coord, _ := startServe(t, serveBin, "-workers", w1+","+w2,
		"-shard-retries", "2", "-shard-backoff", "25ms", "-health-interval", "500ms")

	// The same sweep through both deployment shapes must agree byte for byte.
	body := `{"model":"AlexNet-ES","channel_scale":0.1,"spatial_scale":0.25,"configs":[{"backend":"tcle","pattern":"T8<2,5>"},{"backend":"tclp","pattern":"L4<1,2>"}]}`
	post := func(base string) serve.SimulateResponse {
		t.Helper()
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", base, err)
		}
		defer resp.Body.Close()
		var sim serve.SimulateResponse
		if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s = %d (decode err %v)", base, resp.StatusCode, err)
		}
		return sim
	}
	got, want := post(coord), post(solo)
	gotJSON, _ := json.Marshal(got.Configs)
	wantJSON, _ := json.Marshal(want.Configs)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("sharded result differs from single-process:\n  coord: %s\n  solo:  %s", gotJSON, wantJSON)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Fatalf("fingerprint mismatch: %s vs %s", got.Fingerprint, want.Fingerprint)
	}
	fmt.Printf("shard-smoke: coordinator over 2 workers bit-identical to single-process (%d configs)\n", len(got.Configs))

	// Drive the coordinator with the real load tool: identical concurrent
	// requests must all succeed and mostly coalesce.
	load := exec.Command(loadBin, "-addr", coord, "-n", "8", "-c", "4",
		"-model", "AlexNet-ES", "-channel-scale", "0.1", "-spatial-scale", "0.25",
		"-configs", "tcle:T8<2,5>", "-timeout", "2m")
	out, err := load.Output()
	if err != nil {
		t.Fatalf("tclload: %v\n%s", err, out)
	}
	t.Logf("tclload: %s", out)
	var rep serve.LoadReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("tclload report: %v\n%s", err, out)
	}
	if rep.Errors != 0 || rep.Requests != 8 {
		t.Fatalf("load run unhealthy: %+v", rep)
	}
	if rep.CoalesceHitRate <= 0 {
		t.Fatalf("identical concurrent requests did not coalesce: %+v", rep)
	}
	fmt.Printf("shard-smoke: tclload 8 req @4 conc: p50 %.1fms p99 %.1fms, hit rate %.2f\n",
		rep.P50Ms, rep.P99Ms, rep.CoalesceHitRate)

	// Failover under fire: SIGKILL one worker while a unique-seed drive (no
	// coalescing, no result cache — every request really dispatches) is in
	// flight. Every request must still succeed: the dead worker's slices
	// fail over to the survivor.
	killLoad := exec.Command(loadBin, "-addr", coord, "-n", "6", "-c", "2", "-unique",
		"-model", "AlexNet-ES", "-channel-scale", "0.1", "-spatial-scale", "0.25",
		"-configs", "tcle:T8<2,5>", "-timeout", "2m", "-wait-ready", "5s")
	var killOut, killErrBuf strings.Builder
	killLoad.Stdout, killLoad.Stderr = &killOut, &killErrBuf
	if err := killLoad.Start(); err != nil {
		t.Fatalf("tclload (kill drive): %v", err)
	}
	killDone := make(chan error, 1)
	go func() { killDone <- killLoad.Wait() }()
	time.Sleep(300 * time.Millisecond) // let the drive get requests in flight
	if err := w2cmd.Process.Kill(); err != nil {
		t.Fatalf("kill worker: %v", err)
	}
	t.Logf("shard-smoke: killed worker %s mid-drive", w2)
	if err := <-killDone; err != nil {
		t.Fatalf("tclload survived-kill drive failed: %v\nstdout: %s\nstderr: %s", err, killOut.String(), killErrBuf.String())
	}
	var killRep serve.LoadReport
	if err := json.Unmarshal([]byte(killOut.String()), &killRep); err != nil {
		t.Fatalf("tclload kill-drive report: %v\n%s", err, killOut.String())
	}
	if killRep.Errors != 0 || killRep.Requests != 6 {
		t.Fatalf("kill-drive run unhealthy: %+v", killRep)
	}

	// A fresh activation seed (never requested above, so neither coalescing
	// nor the result cache can answer) forces a real dispatch over the
	// degraded fleet — and must still match single-process byte for byte.
	freshBody := `{"model":"AlexNet-ES","channel_scale":0.1,"spatial_scale":0.25,"act_seed":424242,"configs":[{"backend":"tcle","pattern":"T8<2,5>"},{"backend":"tclp","pattern":"L4<1,2>"}]}`
	postBody := func(base, body string) serve.SimulateResponse {
		t.Helper()
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", base, err)
		}
		defer resp.Body.Close()
		var sim serve.SimulateResponse
		if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s = %d (decode err %v)", base, resp.StatusCode, err)
		}
		return sim
	}
	degraded, ref := postBody(coord, freshBody), postBody(solo, freshBody)
	degradedJSON, _ := json.Marshal(degraded.Configs)
	refJSON, _ := json.Marshal(ref.Configs)
	if string(degradedJSON) != string(refJSON) {
		t.Fatalf("degraded-fleet result differs from single-process:\n  coord: %s\n  solo:  %s", degradedJSON, refJSON)
	}
	fmt.Printf("shard-smoke: worker killed mid-drive, fleet degraded 2->1, results still bit-identical\n")
}
