package bittactical_test

import (
	"strings"
	"testing"

	"bittactical"
)

func TestPublicAPIQuickTour(t *testing.T) {
	zoo := bittactical.DefaultZoo()
	zoo.ChannelScale, zoo.SpatialScale = 0.1, 0.25
	m, err := bittactical.BuildModel("AlexNet-ES", zoo)
	if err != nil {
		t.Fatal(err)
	}
	acts := m.GenerateActs(1)
	res, err := bittactical.Simulate(bittactical.TCLe(bittactical.Trident(2, 5)), m, acts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1.5 {
		t.Errorf("TCLe speedup %.2f implausibly low", res.Speedup())
	}
	base, err := bittactical.Simulate(bittactical.DaDianNaoPP(), m, acts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Speedup() != 1.0 {
		t.Errorf("baseline speedup %v != 1", base.Speedup())
	}
}

func TestPublicAPISchedule(t *testing.T) {
	w := make([]int32, 16*8)
	for i := 0; i < len(w); i += 3 {
		w[i] = int32(i + 1)
	}
	s, err := bittactical.Schedule(16, 8, w, bittactical.Trident(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() >= 8 || s.Len() < 1 {
		t.Errorf("schedule %d columns for a 2/3-sparse filter", s.Len())
	}
}

func TestPublicAPIPatterns(t *testing.T) {
	p, err := bittactical.PatternByName("T8<2,5>")
	if err != nil {
		t.Fatal(err)
	}
	if p.MuxInputs() != 8 {
		t.Errorf("T8<2,5> mux inputs = %d", p.MuxInputs())
	}
	if bittactical.LShape(1, 2).MuxInputs() != 4 {
		t.Error("L4<1,2> mux inputs != 4")
	}
}

func TestPublicAPIBackends(t *testing.T) {
	names := bittactical.Backends()
	for _, want := range []string{"bit-parallel", "TCLp", "TCLe", "dstripes-sm"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Backends() = %v, missing %q", names, want)
		}
	}
	if _, err := bittactical.ConfigForBackend("warp", bittactical.Trident(2, 5)); err == nil {
		t.Error("ConfigForBackend accepted an unknown name")
	}
	cfg, err := bittactical.ConfigForBackend("dstripes-sm", bittactical.Trident(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	zoo := bittactical.DefaultZoo()
	zoo.ChannelScale, zoo.SpatialScale = 0.1, 0.25
	m, err := bittactical.BuildModel("AlexNet-ES", zoo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bittactical.Simulate(cfg, m, m.GenerateActs(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Errorf("dstripes-sm speedup %.2f, want > 1 on a pruned model", res.Speedup())
	}
}

func TestPublicAPIModelNamesCopy(t *testing.T) {
	names := bittactical.ModelNames()
	if len(names) != 7 {
		t.Fatalf("got %d names", len(names))
	}
	names[0] = "mutated"
	if bittactical.ModelNames()[0] == "mutated" {
		t.Error("ModelNames must return a copy")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := bittactical.ExperimentIDs()
	if len(ids) < 13 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	if _, err := bittactical.RunExperiment("not-an-experiment", bittactical.ExperimentOptions{}); err == nil {
		t.Fatal("accepted unknown experiment")
	} else if !strings.Contains(err.Error(), "not-an-experiment") {
		t.Errorf("error %q should name the id", err)
	}
	zoo := bittactical.DefaultZoo()
	zoo.ChannelScale, zoo.SpatialScale = 0.1, 0.25
	tab, err := bittactical.RunExperiment("table2", bittactical.ExperimentOptions{Zoo: zoo})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Render(), "Tiles") {
		t.Error("table2 render missing content")
	}
}
