// Benchmarks: one per table and figure of the paper's evaluation. Each
// iteration regenerates the artifact through its experiment runner on a
// bench-sized instantiation of the model zoo (the experiment ids match
// cmd/tclsim; run that with default options for the full-size numbers
// recorded in EXPERIMENTS.md). Reported metrics carry each artifact's
// headline number so regressions in *results*, not just runtime, are
// visible.
package bittactical_test

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"bittactical/internal/experiments"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

// benchOptions sizes the zoo so the full suite completes in minutes while
// still exercising all seven networks and every layer type.
func benchOptions() experiments.Options {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.125, 0.35
	return experiments.Options{Zoo: z, Trials: 25}
}

// lastCell parses the trailing numeric cell ("1.23x") of a table row.
func lastCell(b *testing.B, row []string) float64 {
	b.Helper()
	cell := strings.TrimSuffix(row[len(row)-1], "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", row[len(row)-1], err)
	}
	return v
}

func runExperiment(b *testing.B, id string, metric func(*experiments.Table) (string, float64)) {
	b.Helper()
	opts := benchOptions()
	run := experiments.Registry[id]
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			name, v := metric(tab)
			b.ReportMetric(v, name)
		}
	}
}

// geomean of a named row's trailing cell.
func rowMetric(label, unit string) func(*experiments.Table) (string, float64) {
	return func(t *experiments.Table) (string, float64) {
		for _, r := range t.Rows {
			if r[0] == label {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(r[len(r)-1], "x"), 64)
				return unit, v
			}
		}
		return unit, 0
	}
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", rowMetric("Geomean", "geomean-W+Ae"))
}

func BenchmarkTable1Q8(b *testing.B) {
	runExperiment(b, "table1q8", rowMetric("Geomean", "geomean-W+Ae"))
}

func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", nil) }

func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3", func(t *experiments.Table) (string, float64) {
		for _, r := range t.Rows {
			if r[0] == "Normalized Total T8<2,5>" {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(r[1], "x"), 64)
				return "tcle-area-ratio", v
			}
		}
		return "tcle-area-ratio", 0
	})
}

func BenchmarkFig8a(b *testing.B) {
	runExperiment(b, "fig8a", rowMetric("T8<2,5>", "fe-geomean-speedup"))
}

func BenchmarkFig8b(b *testing.B) {
	runExperiment(b, "fig8b", rowMetric("TCLe<2,5>", "tcle-geomean-speedup"))
}

func BenchmarkFig8c(b *testing.B) { runExperiment(b, "fig8c", nil) }

func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9", nil) }

func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10", nil) }

func BenchmarkFig11a(b *testing.B) {
	runExperiment(b, "fig11a", func(t *experiments.Table) (string, float64) {
		// Headline: T8<2,5> at 70% sparsity (column 1, row "70%").
		for _, r := range t.Rows {
			if r[0] == "70%" {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(r[1], "x"), 64)
				return "t25-at-70pct", v
			}
		}
		return "t25-at-70pct", 0
	})
}

func BenchmarkFig11b(b *testing.B) {
	runExperiment(b, "fig11b", func(t *experiments.Table) (string, float64) {
		for _, r := range t.Rows {
			if r[0] == "90%" {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(r[1], "x"), 64)
				return "alg1-at-90pct", v
			}
		}
		return "alg1-at-90pct", 0
	})
}

func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12", rowMetric("TCLe<2,5>", "tcle-vs-dadn"))
}

func BenchmarkFig13(b *testing.B) {
	runExperiment(b, "fig13", rowMetric("TCLe<2,5>", "tcle-8b-speedup"))
}

// TestEmitBenchSim measures the fig8/fig11 experiment runners at
// Parallelism 1 and 8 with testing.Benchmark and records ns/op in
// BENCH_sim.json, the committed wall-time baseline for the simulation
// engine. Gated behind TCL_BENCH_SIM=1 (or `make bench-sim`) so ordinary
// test runs stay fast; the shared schedule cache is reset before every
// measurement so each configuration pays its own scheduling cost.
func TestEmitBenchSim(t *testing.T) {
	if os.Getenv("TCL_BENCH_SIM") == "" {
		t.Skip("set TCL_BENCH_SIM=1 to regenerate BENCH_sim.json")
	}
	type record struct {
		ID          string  `json:"id"`
		Parallelism int     `json:"parallelism"`
		GoMaxProcs  int     `json:"go_max_procs"`
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		Iterations  int     `json:"iterations"`
		Speedup     float64 `json:"speedup_vs_serial,omitempty"`
		// Contended marks measurements whose requested parallelism exceeds
		// the host's GOMAXPROCS: the workers time-slice one core, so the
		// number is the serial engine plus scheduling overhead, not a
		// parallel-engine figure. Tooling comparing runs should skip them.
		Contended bool `json:"contended,omitempty"`
	}
	// A worker pool cannot run faster than the scheduler lets it: when
	// GOMAXPROCS is 1 (single-core hosts, constrained containers) the j=8
	// measurement is the serial engine plus goroutine overhead, and a
	// "speedup" derived from it is noise. Record the effective GOMAXPROCS on
	// every measurement, tag over-subscribed rows contended, and emit
	// speedup_vs_serial only when the host could actually run workers
	// concurrently.
	concurrent := runtime.GOMAXPROCS(0) > 1
	out := struct {
		Generated  string   `json:"generated"`
		GoMaxProcs int      `json:"go_max_procs"`
		NumCPU     int      `json:"num_cpu"`
		Zoo        string   `json:"zoo"`
		Note       string   `json:"note,omitempty"`
		Benchmarks []record `json:"benchmarks"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Zoo:        "channel scale 0.125, spatial scale 0.35, 25 trials",
	}
	if !concurrent {
		out.Note = "GOMAXPROCS=1: parallel runs cannot overlap on this host; speedup_vs_serial suppressed"
	}
	serialNs := map[string]int64{}
	for _, id := range []string{"fig8a", "fig8b", "fig11a", "fig11b"} {
		run := experiments.Registry[id]
		if run == nil {
			t.Fatalf("unknown experiment %q", id)
		}
		for _, par := range []int{1, 8} {
			opts := benchOptions()
			opts.Parallelism = par
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					// Each configuration pays its own schedule and plane
					// builds: reset both shared caches per iteration.
					sched.Shared.Reset()
					sim.SharedPlanes.Reset()
					if _, err := run(opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			rec := record{
				ID: id, Parallelism: par,
				GoMaxProcs:  runtime.GOMAXPROCS(0),
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: int64(r.AllocsPerOp()),
				Iterations:  r.N,
				Contended:   par > runtime.GOMAXPROCS(0),
			}
			if par == 1 {
				serialNs[id] = r.NsPerOp()
			} else if s := serialNs[id]; concurrent && s > 0 && r.NsPerOp() > 0 {
				rec.Speedup = float64(s) / float64(r.NsPerOp())
			}
			out.Benchmarks = append(out.Benchmarks, rec)
			t.Logf("%s j=%d: %d ns/op (%d iters)", id, par, r.NsPerOp(), r.N)
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sim.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkScheduler isolates the paper's core contribution: Algorithm 1 on
// one Figure-11-sized filter (288 steps × 16 lanes) at 70% sparsity.
func BenchmarkScheduler(b *testing.B) {
	opts := benchOptions()
	opts.Trials = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(opts); err != nil {
			b.Fatal(err)
		}
	}
}
