// Benchmarks: one per table and figure of the paper's evaluation. Each
// iteration regenerates the artifact through its experiment runner on a
// bench-sized instantiation of the model zoo (the experiment ids match
// cmd/tclsim; run that with default options for the full-size numbers
// recorded in EXPERIMENTS.md). Reported metrics carry each artifact's
// headline number so regressions in *results*, not just runtime, are
// visible.
package bittactical_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"bittactical/internal/bench"
	"bittactical/internal/experiments"
	"bittactical/internal/nn"
)

// benchOptions sizes the zoo so the full suite completes in minutes while
// still exercising all seven networks and every layer type.
func benchOptions() experiments.Options {
	z := nn.DefaultZoo()
	z.ChannelScale, z.SpatialScale = 0.125, 0.35
	return experiments.Options{Zoo: z, Trials: 25}
}

// lastCell parses the trailing numeric cell ("1.23x") of a table row.
func lastCell(b *testing.B, row []string) float64 {
	b.Helper()
	cell := strings.TrimSuffix(row[len(row)-1], "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", row[len(row)-1], err)
	}
	return v
}

func runExperiment(b *testing.B, id string, metric func(*experiments.Table) (string, float64)) {
	b.Helper()
	opts := benchOptions()
	run := experiments.Registry[id]
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			name, v := metric(tab)
			b.ReportMetric(v, name)
		}
	}
}

// geomean of a named row's trailing cell.
func rowMetric(label, unit string) func(*experiments.Table) (string, float64) {
	return func(t *experiments.Table) (string, float64) {
		for _, r := range t.Rows {
			if r[0] == label {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(r[len(r)-1], "x"), 64)
				return unit, v
			}
		}
		return unit, 0
	}
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", rowMetric("Geomean", "geomean-W+Ae"))
}

func BenchmarkTable1Q8(b *testing.B) {
	runExperiment(b, "table1q8", rowMetric("Geomean", "geomean-W+Ae"))
}

func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", nil) }

func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3", func(t *experiments.Table) (string, float64) {
		for _, r := range t.Rows {
			if r[0] == "Normalized Total T8<2,5>" {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(r[1], "x"), 64)
				return "tcle-area-ratio", v
			}
		}
		return "tcle-area-ratio", 0
	})
}

func BenchmarkFig8a(b *testing.B) {
	runExperiment(b, "fig8a", rowMetric("T8<2,5>", "fe-geomean-speedup"))
}

func BenchmarkFig8b(b *testing.B) {
	runExperiment(b, "fig8b", rowMetric("TCLe<2,5>", "tcle-geomean-speedup"))
}

func BenchmarkFig8c(b *testing.B) { runExperiment(b, "fig8c", nil) }

func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9", nil) }

func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10", nil) }

func BenchmarkFig11a(b *testing.B) {
	runExperiment(b, "fig11a", func(t *experiments.Table) (string, float64) {
		// Headline: T8<2,5> at 70% sparsity (column 1, row "70%").
		for _, r := range t.Rows {
			if r[0] == "70%" {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(r[1], "x"), 64)
				return "t25-at-70pct", v
			}
		}
		return "t25-at-70pct", 0
	})
}

func BenchmarkFig11b(b *testing.B) {
	runExperiment(b, "fig11b", func(t *experiments.Table) (string, float64) {
		for _, r := range t.Rows {
			if r[0] == "90%" {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(r[1], "x"), 64)
				return "alg1-at-90pct", v
			}
		}
		return "alg1-at-90pct", 0
	})
}

func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12", rowMetric("TCLe<2,5>", "tcle-vs-dadn"))
}

func BenchmarkFig13(b *testing.B) {
	runExperiment(b, "fig13", rowMetric("TCLe<2,5>", "tcle-8b-speedup"))
}

// TestEmitBenchSim regenerates BENCH_sim.json through the shared
// internal/bench sim suite (fig8/fig11 runners at parallelism 1 and 8,
// caches reset per iteration). Gated behind TCL_BENCH_SIM=1 (`make
// bench-sim`); a contended run refuses to overwrite the committed
// baseline unless TCL_BENCH_FORCE=1 (`make bench-sim FORCE=1`).
func TestEmitBenchSim(t *testing.T) {
	if os.Getenv("TCL_BENCH_SIM") == "" {
		t.Skip("set TCL_BENCH_SIM=1 to regenerate BENCH_sim.json")
	}
	f, err := bench.RunSim(t.Logf, bench.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteBaseline("BENCH_sim.json", f, os.Getenv("TCL_BENCH_FORCE") != ""); err != nil {
		t.Fatal(err)
	}
}

// TestEmitBenchServe regenerates BENCH_serve.json through the shared
// internal/bench serve suite: a fresh in-process tclserve behind loopback
// HTTP, driven by the tclload machinery over three load shapes (unique
// requests, hot coalesced repeats, streamed repeats), plus deterministic
// shard-balance rows — max/mean predicted shard cost for the LPT
// partitioner vs round-robin on every zoo model. Gated behind
// TCL_BENCH_SERVE=1 (`make bench-serve`).
func TestEmitBenchServe(t *testing.T) {
	if os.Getenv("TCL_BENCH_SERVE") == "" {
		t.Skip("set TCL_BENCH_SERVE=1 to regenerate BENCH_serve.json")
	}
	f, err := bench.RunServe(t.Logf, bench.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteBaseline("BENCH_serve.json", f, os.Getenv("TCL_BENCH_FORCE") != ""); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkScheduler isolates the paper's core contribution: Algorithm 1 on
// one Figure-11-sized filter (288 steps × 16 lanes) at 70% sparsity.
func BenchmarkScheduler(b *testing.B) {
	opts := benchOptions()
	opts.Trials = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(opts); err != nil {
			b.Fatal(err)
		}
	}
}
