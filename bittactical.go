// Package bittactical is the public API of the Bit-Tactical (TCL)
// reproduction: a software scheduler that statically plans sparse-weight
// promotions for a lightweight hardware front-end, two bit-serial
// activation back-ends (TCLp: dynamic precision; TCLe: Booth effectual
// terms), a column-exact simulator for the whole design family, and the
// experiment harness that regenerates every table and figure of the ASPLOS
// 2019 paper.
//
// The three-call tour:
//
//	model, _ := bittactical.BuildModel("AlexNet-ES", bittactical.DefaultZoo())
//	acts := model.GenerateActs(1)
//	res, _ := bittactical.Simulate(bittactical.TCLe(bittactical.Trident(2, 5)), model, acts)
//	fmt.Printf("%.2fx over DaDianNao++\n", res.Speedup())
//
// Deeper layers live under internal/ (see README.md for the map); this
// package re-exports the surface a downstream user needs: the model zoo,
// connectivity patterns, accelerator configurations, the scheduler, the
// simulator, and the experiment registry.
package bittactical

import (
	"context"

	"bittactical/internal/arch"
	"bittactical/internal/backend"
	_ "bittactical/internal/backend/dstripes" // register the plugin back-end
	"bittactical/internal/experiments"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
	"bittactical/internal/tensor"
	_ "bittactical/internal/workloads/attention" // register the transformer-era workload zoo
)

// ---- model zoo ----

// Model is an instantiated evaluation network.
type Model = nn.Model

// ZooConfig controls zoo instantiation (scale, width, seed).
type ZooConfig = nn.ZooConfig

// DefaultZoo returns the configuration the experiments use.
func DefaultZoo() ZooConfig { return nn.DefaultZoo() }

// ModelNames lists the paper's seven evaluation networks.
func ModelNames() []string { return append([]string(nil), nn.ModelNames...) }

// Models lists every registered workload, sorted: the paper's seven plus
// any zoo registered via an nn.Register init — this package links the
// transformer-era attention workloads (internal/workloads/attention).
func Models() []string { return nn.Names() }

// BuildModel instantiates any registered workload by name
// (case-insensitive; see Models).
func BuildModel(name string, cfg ZooConfig) (*Model, error) { return nn.BuildModel(name, cfg) }

// ---- front-end connectivity & scheduling ----

// Pattern is a front-end connectivity configuration.
type Pattern = sched.Pattern

// Trident returns the sparse T<h,d> pattern of Figure 3b — the paper's
// co-designed interconnect.
func Trident(h, d int) Pattern { return sched.T(h, d) }

// LShape returns the contiguous L<h,d> pattern of Figure 3a.
func LShape(h, d int) Pattern { return sched.L(h, d) }

// PatternByName resolves the paper's configuration labels ("T8<2,5>", …).
func PatternByName(name string) (Pattern, error) { return sched.ByName(name) }

// Schedule statically schedules one filter (a Steps×Lanes dense weight
// matrix) under the pattern with the paper's Algorithm 1 and returns the
// verified schedule.
func Schedule(lanes, steps int, weights []int32, p Pattern) (*sched.Schedule, error) {
	f := sched.NewFilter(lanes, steps, weights, nil)
	s := sched.ScheduleFilter(f, p, sched.Algorithm1)
	if err := sched.Verify(f, p, s); err != nil {
		return nil, err
	}
	return s, nil
}

// ---- accelerator configurations ----

// Config is a hardware configuration (Table 2).
type Config = arch.Config

// DaDianNaoPP returns the dense bit-parallel baseline.
func DaDianNaoPP() Config { return arch.DaDianNaoPP() }

// FrontEndOnly returns weight skipping over a bit-parallel back-end
// (Figure 8a's subject).
func FrontEndOnly(p Pattern) Config { return arch.FrontEndOnly(p) }

// TCLp returns the dynamic-precision bit-serial design with pattern p.
func TCLp(p Pattern) Config { return arch.NewTCL(p, arch.TCLp) }

// TCLe returns the Booth effectual-term design with pattern p.
func TCLe(p Pattern) Config { return arch.NewTCL(p, arch.TCLe) }

// Backends lists every registered activation back-end by name — the paper's
// three plus any plugin registered via a backend.Register init (this package
// links dstripes-sm, the sign-magnitude streaming extension).
func Backends() []string { return backend.Names() }

// ConfigForBackend returns the TCL design with pattern p and the named
// activation back-end, resolved through the process-wide registry.
// ConfigForBackend("TCLp", p) is TCLp(p); ConfigForBackend("dstripes-sm", p)
// runs the plugin with no engine changes.
func ConfigForBackend(name string, p Pattern) (Config, error) {
	be, err := backend.Lookup(name)
	if err != nil {
		return Config{}, err
	}
	return arch.NewTCLBackend(p, be), nil
}

// ---- simulation ----

// Result is a network simulation outcome.
type Result = sim.Result

// Tensor is a dense 4-D fixed-point tensor.
type Tensor = tensor.T

// SimOptions tunes the simulation engine (worker parallelism, schedule
// cache) without affecting results: output is bit-identical at any setting.
type SimOptions = sim.Options

// Simulate runs every layer of the model under the configuration using the
// default engine options: one worker per CPU and the shared schedule cache.
func Simulate(cfg Config, m *Model, acts []*Tensor) (*Result, error) {
	return sim.SimulateModel(cfg, m, acts)
}

// SimulateOpts is Simulate with explicit engine options.
func SimulateOpts(cfg Config, m *Model, acts []*Tensor, opts SimOptions) (*Result, error) {
	return sim.SimulateModelOpts(cfg, m, acts, opts)
}

// SimulateContext is SimulateOpts under a context: cancellation or a
// deadline stops the engine's workers from claiming further work and
// returns ctx.Err() with no partial result. An uncancelled context yields
// output bit-identical to SimulateOpts.
func SimulateContext(ctx context.Context, cfg Config, m *Model, acts []*Tensor, opts SimOptions) (*Result, error) {
	return sim.SimulateModelContext(ctx, cfg, m, acts, opts)
}

// ---- experiments ----

// ExperimentOptions configures an experiment runner.
type ExperimentOptions = experiments.Options

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, opts ExperimentOptions) (*experiments.Table, error) {
	run, ok := experiments.Registry[id]
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return run(opts)
}

// UnknownExperimentError reports an unrecognized experiment id.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "bittactical: unknown experiment " + e.ID
}
