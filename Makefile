GO ?= go

.PHONY: all build vet test race check lint-backend lint-workload serve-smoke shard-smoke bench bench-gate bench-contention cache-stress bench-sim bench-sched bench-kernel bench-serve fuzz-sched fuzz-kernel fmt clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The pre-commit gate: compile everything, vet, lint the back-end seam, run
# the full suite under the race detector (the parallel engine is on by
# default, so every test doubles as a race test), and hold the committed
# benchmark baselines.
check: build vet lint-backend lint-workload race bench-gate

# The benchmark regression gate: re-measure the kernel, scheduler, engine,
# and serving suites and compare against the committed BENCH_*.json baselines.
# allocs/op gates on every host; ns/op only against a baseline recorded at
# the same GOMAXPROCS with neither side contended. Exits 1 on any >10%
# regression (tune with THRESHOLD=0.05 etc.).
THRESHOLD ?= 0.10
bench-gate:
	$(GO) run ./cmd/tclbench -compare -threshold $(THRESHOLD)

# Contention profile: run the fig8a sweep at parallelism 1, 2, 4 and 8 with
# mutex profiling at full fraction and print the top contended stacks —
# where the striped schedule cache, plane cache, and worker pool actually
# make workers wait. Diagnostic, not a gate.
bench-contention:
	$(GO) run ./cmd/tclbench -contention

# Hammer the shared caches: the striped schedule cache and plane cache
# stress tests under the race detector, three times over, with the
# eviction-accounting invariants checked across stripes.
cache-stress:
	$(GO) test -race -count=3 ./internal/sched -run 'TestCache|TestKeyer|TestScheduleGroups'
	$(GO) test -race -count=3 ./internal/sim -run 'TestPlaneCache'

# Guard the back-end seam: all serial-cost semantics live behind the
# internal/backend registry. Any switch arm on a back-end kind outside that
# package (and its test-only legacy references) reintroduces the enum
# dispatch this architecture removed, and breaks plugin back-ends like
# dstripes-sm.
lint-backend:
	@bad=$$(grep -rn -E 'case arch\.(TCLe|TCLp|BitParallel)|switch .*\.BackEnd\b' \
		--include='*.go' --exclude-dir=backend \
		internal cmd examples *.go 2>/dev/null); \
	if [ -n "$$bad" ]; then \
		echo "back-end dispatch outside internal/backend (use backend.Backend methods):"; \
		echo "$$bad"; exit 1; \
	fi

# Guard the workload seam: model resolution lives behind the internal/nn
# registry (nn.Register / nn.Lookup). A switch or if-chain arm on a model
# name outside that package reintroduces the hard-coded zoo dispatch the
# registry removed, and breaks externally registered workloads like
# internal/workloads/attention.
lint-workload:
	@bad=$$(grep -rn -E '(case|==) "(AlexNet|GoogLeNet|ResNet50|MobileNet|Bi-LSTM|BERT-Attn|GPT2-Attn|ViT-Attn|ConvNeXt-DW)' \
		--include='*.go' --exclude-dir=nn \
		internal cmd examples *.go 2>/dev/null); \
	if [ -n "$$bad" ]; then \
		echo "model-name dispatch outside internal/nn (use nn.Register/nn.Lookup):"; \
		echo "$$bad"; exit 1; \
	fi

# End-to-end smoke of the evaluation service: builds the real tclserve
# binary, starts it on an ephemeral port, hits /healthz, /v1/simulate and
# /metrics over TCP, then SIGTERMs it and requires a clean drain.
serve-smoke:
	TCL_SERVE_SMOKE=1 $(GO) test ./cmd/tclserve -run TestServeSmoke -v -timeout 5m

# Distributed-mode load smoke: real tclserve binaries — a coordinator over
# two shard workers — must return results byte-identical to a standalone
# single-process server, survive a short tclload drive with zero errors and
# a nonzero coalesce hit rate, and then keep serving with zero errors and
# bit-identical results after one worker is SIGKILLed mid-drive (failover).
shard-smoke:
	TCL_SHARD_SMOKE=1 $(GO) test ./cmd/tclserve -run TestShardSmoke -v -timeout 10m

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$'

# Baseline regeneration. A contended run (requested parallelism beyond
# GOMAXPROCS) refuses to overwrite an existing baseline; pass FORCE=1 to
# override with the contamination recorded honestly in the file.
FORCE ?=

# Regenerate BENCH_sim.json: fig8/fig11 ns/op at Parallelism 1 and 8.
bench-sim:
	TCL_BENCH_SIM=1 TCL_BENCH_FORCE=$(FORCE) $(GO) test -run TestEmitBenchSim -v -timeout 60m

# Regenerate BENCH_sched.json: scheduler kernel vs reference ns/op and
# allocs/op across the Table-2 pattern x algorithm sweep.
bench-sched:
	TCL_BENCH_SCHED=1 TCL_BENCH_FORCE=$(FORCE) $(GO) test ./internal/sched -run TestEmitBenchSched -v -timeout 30m

# Regenerate BENCH_kernel.json: SWAR vs scalar column-max ns/op and
# allocs/op per lane count.
bench-kernel:
	TCL_BENCH_KERNEL=1 TCL_BENCH_FORCE=$(FORCE) $(GO) test ./internal/sim -run TestEmitBenchKernel -v -timeout 10m

# Regenerate BENCH_serve.json: request latency percentiles, throughput and
# coalesce hit rate for the tclserve HTTP tier under three load shapes,
# plus deterministic shard-balance rows (max/mean predicted shard cost for
# the LPT partitioner vs round-robin on every zoo model).
bench-serve:
	TCL_BENCH_SERVE=1 TCL_BENCH_FORCE=$(FORCE) $(GO) test -run TestEmitBenchServe -v -timeout 30m

# Differential fuzz of the optimized scheduling kernel against the reference
# implementation (FUZZTIME defaults to 30s; raise for soak runs).
FUZZTIME ?= 30s
fuzz-sched:
	$(GO) test ./internal/sched -fuzz FuzzKernelMatchesReference -fuzztime $(FUZZTIME) -run '^$$'

# Differential fuzz of the SWAR column-max kernel against the scalar
# reference.
fuzz-kernel:
	$(GO) test ./internal/sim -fuzz FuzzColumnMaxSWAR -fuzztime $(FUZZTIME) -run '^$$'

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
