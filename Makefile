GO ?= go

.PHONY: all build vet test race check bench bench-sim fmt clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The pre-commit gate: compile everything, vet, and run the full suite
# under the race detector (the parallel engine is on by default, so every
# test doubles as a race test).
check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$'

# Regenerate BENCH_sim.json: fig8/fig11 ns/op at Parallelism 1 and 8.
bench-sim:
	TCL_BENCH_SIM=1 $(GO) test -run TestEmitBenchSim -v -timeout 60m

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
