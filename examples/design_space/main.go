// Design space: explore the front-end connectivity trade-off the paper's
// Section 3 motivates — schedule quality vs multiplexer cost vs silicon
// area — over a sparsity sweep, and print a compact Pareto view.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"bittactical/internal/arch"
	"bittactical/internal/energy"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
)

func main() {
	patterns := []string{
		"L4<1,2>", "T4<2,2>", "L8<1,6>", "L8<2,5>", "T8<2,5>", "L8<4,3>", "X<inf,15>",
	}
	levels := []float64{0.5, 0.7, 0.9}
	const trials, steps, lanes = 40, 288, 16

	fmt.Printf("%-10s %6s %9s", "pattern", "mux", "area mm2")
	for _, sp := range levels {
		fmt.Printf("  @%2.0f%%W", sp*100)
	}
	fmt.Println("  (geomean schedule speedup, random 3x3x512 filters)")

	for _, name := range patterns {
		p, err := sched.ByName(name)
		if err != nil {
			panic(err)
		}
		area := energy.AreaOf(arch.NewTCL(p, arch.TCLe)).Total()
		fmt.Printf("%-10s %6d %9.1f", p.Name, p.MuxInputs(), area)
		for li, sp := range levels {
			rng := rand.New(rand.NewSource(int64(li) + 1)) // same filters per level
			var logSum float64
			for t := 0; t < trials; t++ {
				w := sparsity.RandomSparseFilter(rng, steps, lanes, sp)
				f := sched.NewFilter(lanes, steps, w, nil)
				cols := sched.ScheduleFilter(f, p, sched.Algorithm1).Len()
				if cols == 0 {
					cols = 1
				}
				logSum += math.Log(float64(steps) / float64(cols))
			}
			fmt.Printf("  %5.2fx", math.Exp(logSum/trials))
		}
		fmt.Println()
	}
	fmt.Println("\nThe Trident (T8<2,5>) matches the L patterns' mux budget while tracking")
	fmt.Println("X<inf,15> most closely — the paper's hardware/software co-design result.")
}
