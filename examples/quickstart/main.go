// Quickstart: schedule one sparse convolution layer with Bit-Tactical's
// software scheduler, execute it through the simulated datapath, check the
// outputs bit-exactly against a reference convolution, and compare the
// dense baseline with the TCL configurations.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bittactical/internal/arch"
	"bittactical/internal/fixed"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
	"bittactical/internal/sparsity"
	"bittactical/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A 64-filter 3x3 convolution over 64 channels, pruned to 70% weight
	// sparsity, with realistically distributed activations.
	layer := &nn.Layer{
		Name: "conv", Kind: nn.Conv, K: 64, C: 64, R: 3, S: 3,
		Stride: 1, Pad: 1, InH: 16, InW: 16,
	}
	layer.Weights = tensor.New(64, 64, 3, 3)
	sparsity.WeightModel{Sigma: 400}.FillPruned(rng, layer.Weights, fixed.W16, 0.70)

	acts := tensor.New(1, 64, 16, 16)
	law := sparsity.ActModel{ZeroFrac: 0.4, MeanLog2: 11, SigmaLog2: 2, SigBits: 5}
	law.FillTensor(rng, acts, fixed.W16)

	lowered, err := nn.Lower(layer, acts, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer: %d MACs, weights %.0f%% sparse, activations %.0f%% zero\n",
		layer.MACs(), layer.Weights.Sparsity()*100, acts.Sparsity()*100)

	// Inspect one filter's schedule under the Trident front-end.
	pattern := sched.T(2, 5)
	filter := sched.NewFilter(16, lowered.Steps, lowered.FilterRow(0), nil)
	schedule := sched.ScheduleFilter(filter, pattern, sched.Algorithm1)
	if err := sched.Verify(filter, pattern, schedule); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter 0: dense schedule %d columns -> %d after %s scheduling (%.2fx)\n",
		lowered.Steps, schedule.Len(), pattern.Name,
		float64(lowered.Steps)/float64(schedule.Len()))

	// Simulate the design family and verify semantic preservation.
	configs := []arch.Config{
		arch.DaDianNaoPP(),
		arch.FrontEndOnly(pattern),
		arch.NewTCL(pattern, arch.TCLp),
		arch.NewTCL(pattern, arch.TCLe),
	}
	for _, cfg := range configs {
		if err := sim.ExecuteGolden(cfg, lowered); err != nil {
			log.Fatalf("%s: golden check failed: %v", cfg.Name, err)
		}
		r := sim.SimulateLayer(cfg, lowered)
		fmt.Printf("%-22s %9d cycles  speedup %5.2fx  (outputs bit-exact)\n",
			cfg.Name, r.Cycles, r.Speedup())
	}
}
