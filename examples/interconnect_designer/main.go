// Interconnect designer: automate the hardware/software co-design loop the
// paper performs by hand when it crafts the Trident. Given a multiplexer
// budget (mux inputs per lane) and a lookahead depth cap, hill-climb over
// promotion-offset sets, scoring each candidate pattern by the scheduler's
// geomean compaction on random sparse filters — and compare the synthesized
// pattern against the paper's L and T shapes.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
)

const (
	lanes   = 16
	steps   = 96 // 3x3x~170 channels worth of schedule
	trials  = 24
	muxIn   = 8 // the paper's budget: 8-input muxes
	hCap    = 2 // ABR depth cap (h+1 = 3 activation buffers)
	climbIt = 60
)

// score returns the geomean schedule compaction of a pattern over fixed
// filter sets at 60/75/90% sparsity (deterministic across candidates).
func score(p sched.Pattern) float64 {
	if p.Validate() != nil {
		return 0
	}
	var logSum float64
	var n int
	for li, sp := range []float64{0.6, 0.75, 0.9} {
		rng := rand.New(rand.NewSource(int64(li) + 100))
		for t := 0; t < trials; t++ {
			w := sparsity.RandomSparseFilter(rng, steps, lanes, sp)
			f := sched.NewFilter(lanes, steps, w, nil)
			cols := sched.ScheduleFilter(f, p, sched.Algorithm1).Len()
			if cols == 0 {
				cols = 1
			}
			logSum += math.Log(float64(steps) / float64(cols))
			n++
		}
	}
	return math.Exp(logSum / float64(n))
}

// neighbors perturbs one offset of the pattern within the budget.
func neighbors(p sched.Pattern, rng *rand.Rand) sched.Pattern {
	q := sched.Pattern{Name: "custom", H: hCap, D: p.D}
	q.Offsets = append([]sched.Offset(nil), p.Offsets...)
	i := rng.Intn(len(q.Offsets))
	for tries := 0; tries < 20; tries++ {
		cand := sched.Offset{Dt: 1 + rng.Intn(hCap), Dl: rng.Intn(2*7+1) - 7}
		dup := false
		for j, o := range q.Offsets {
			if j != i && o == cand {
				dup = true
				break
			}
		}
		if !dup {
			q.Offsets[i] = cand
			break
		}
	}
	return q
}

func main() {
	rng := rand.New(rand.NewSource(99))

	// Start from the contiguous L shape at the same budget.
	start := sched.L(2, 5)
	best := start
	bestScore := score(best)
	fmt.Printf("budget: %d-input mux, lookahead depth <= %d\n\n", muxIn, hCap)
	fmt.Printf("start   %-10s score %.3fx\n", start.Name, bestScore)

	cur, curScore := best, bestScore
	for it := 0; it < climbIt; it++ {
		cand := neighbors(cur, rng)
		s := score(cand)
		// Simulated-annealing-ish: accept improvements, occasionally sideways.
		if s > curScore || (s > curScore*0.99 && rng.Float64() < 0.3) {
			cur, curScore = cand, s
			if s > bestScore {
				best, bestScore = cand, s
				fmt.Printf("iter %2d  improved to %.3fx with offsets %v\n", it, s, cand.Offsets)
			}
		}
	}

	fmt.Printf("\n%-12s %8s  offsets\n", "pattern", "score")
	for _, p := range []sched.Pattern{sched.L(2, 5), sched.T(2, 5), best} {
		fmt.Printf("%-12s %7.3fx  %v\n", p.Name, score(p), p.Offsets)
	}
	fmt.Println("\nThe synthesized pattern lands at or above the hand-crafted Trident —")
	fmt.Println("non-contiguous, depth-spread offsets win, which is exactly the paper's")
	fmt.Println("Section 3.1 co-design argument.")
}
