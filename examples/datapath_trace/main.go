// Datapath trace: drive the structural register-transfer-level model of a
// TCL processing element — WSU column issue, ABR circular-queue slides,
// shuffling-mux selects, serial shift-adds — over one scheduled filter, and
// show that the analytic simulator, the structural model, and the reference
// convolution all agree.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bittactical/internal/arch"
	"bittactical/internal/bits"
	"bittactical/internal/datapath"
	"bittactical/internal/fixed"
	"bittactical/internal/sched"
	"bittactical/internal/sparsity"
)

func main() {
	const lanes, steps = 16, 12
	rng := rand.New(rand.NewSource(7))

	// A 70%-sparse filter and its activation stream.
	w := sparsity.RandomSparseFilter(rng, steps, lanes, 0.7)
	acts := make([]int32, steps*lanes)
	law := sparsity.ActModel{ZeroFrac: 0.35, MeanLog2: 9, SigmaLog2: 1.8, SigBits: 5}
	for i := range acts {
		acts[i] = law.Sample(rng, fixed.W16)
	}
	src := func(win, step, lane int) int32 { return acts[step*lanes+lane] }

	filter := sched.NewFilter(lanes, steps, w, nil)
	pattern := sched.T(2, 5)
	schedule := sched.ScheduleFilter(filter, pattern, sched.Algorithm1)
	if err := sched.Verify(filter, pattern, schedule); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter: %d/%d weights effectual; schedule %d columns (dense %d)\n\n",
		filter.NNZ(), steps*lanes, schedule.Len(), steps)

	// Column-by-column trace: window slides, promotions, serial durations.
	fmt.Println("col  head adv | promotions (dt,dl)            | TCLe serial cycles")
	for ci, col := range schedule.Columns {
		var promos []string
		peMax := 1
		for _, e := range col.Entries {
			if e.Weight == 0 {
				continue
			}
			if e.Dt != 0 || e.Dl != 0 {
				promos = append(promos, fmt.Sprintf("(%d,%+d)", e.Dt, e.Dl))
			}
			if c := bits.OneffsetCount(src(0, e.SrcStep, e.SrcLane), fixed.W16); c > peMax {
				peMax = c
			}
		}
		fmt.Printf("%3d  %4d %3d | %-30s | %d\n", ci, col.Head, col.Advance,
			fmt.Sprint(promos), peMax)
	}

	// Execute structurally under TCLe and cross-check everything.
	cfg := arch.NewTCL(pattern, arch.TCLe)
	psum, stats, err := datapath.RunFilter(cfg, filter, schedule, src, 0)
	if err != nil {
		log.Fatal(err)
	}
	var want int64
	for st := 0; st < steps; st++ {
		for ln := 0; ln < lanes; ln++ {
			want += int64(w[st*lanes+ln]) * int64(acts[st*lanes+ln])
		}
	}
	fmt.Printf("\nstructural psum %d == reference %d: %v\n", psum, want, psum == want)
	fmt.Printf("structural run: %d serial cycles, %d ABR rotations, %d ABR loads "+
		"(dense walk would load %d), %d shift-adds, %d tree reductions\n",
		stats.Cycles, stats.ABRRotations, stats.ABRLoads, steps, stats.ShiftOps, stats.TreeReductions)
}
