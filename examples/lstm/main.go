// LSTM: drive the Bi-LSTM speech workload (the paper's RNN case) through
// TCLp — the natural fit for fully-connected gate projections, where every
// timestep reuses the weights — and study how off-chip bandwidth gates the
// realized speedup (the Figure 10 question for a memory-hungry workload).
package main

import (
	"fmt"
	"log"

	"bittactical/internal/arch"
	"bittactical/internal/memory"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

func main() {
	m, err := nn.BuildModel("Bi-LSTM", nn.DefaultZoo())
	if err != nil {
		log.Fatal(err)
	}
	acts := m.GenerateActs(7)
	lws, err := m.Lowered(16, acts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d layers (%d FC gate projections), %.1fM MACs, %.0f%% weight sparsity\n\n",
		m.Name, len(m.Layers), countFC(m), float64(m.TotalMACs())/1e6, m.WeightSparsity()*100)

	cfg := arch.NewTCL(sched.T(2, 5), arch.TCLp)

	// Compute-only picture per layer group.
	var conv, fc, convD, fcD int64
	var traffic memory.Traffic
	var baseTraffic memory.Traffic
	base := arch.DaDianNaoPP()
	for li, lw := range lws {
		r := sim.SimulateLayer(cfg, lw)
		if m.Layers[li].Kind == nn.FC {
			fc += r.Cycles
			fcD += r.DenseCycles
		} else {
			conv += r.Cycles
			convD += r.DenseCycles
		}
		traffic.Add(memory.LayerTraffic(cfg, lw))
		baseTraffic.Add(memory.LayerTraffic(base, lw))
	}
	fmt.Printf("conv front-end layers: %.2fx speedup\n", float64(convD)/float64(conv))
	fmt.Printf("LSTM gate projections: %.2fx speedup (timesteps provide the window parallelism)\n",
		float64(fcD)/float64(fc))
	fmt.Printf("whole network:         %.2fx at infinite bandwidth\n\n",
		float64(convD+fcD)/float64(conv+fc))

	// Recurrent models stream large weight matrices every timestep batch;
	// show where each memory technology caps the gain.
	fmt.Printf("off-chip traffic: %.1f KB weights (+%.1f KB schedule metadata), %.1f KB activations\n\n",
		float64(traffic.WeightBytes)/1024, float64(traffic.MetadataBytes)/1024,
		float64(traffic.ActInBytes+traffic.ActOutBytes)/1024)
	fmt.Printf("%-14s %10s\n", "memory", "speedup")
	for _, tech := range memory.Techs {
		tcl := memory.BoundedCycles(conv+fc, traffic, tech, cfg.FrequencyGHz)
		dense := memory.BoundedCycles(convD+fcD, baseTraffic, tech, base.FrequencyGHz)
		fmt.Printf("%-14s %9.2fx\n", tech.Name, float64(dense)/float64(tcl))
	}
}

func countFC(m *nn.Model) int {
	n := 0
	for _, l := range m.Layers {
		if l.Kind == nn.FC {
			n++
		}
	}
	return n
}
