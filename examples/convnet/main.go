// Convnet: run a full pruned CNN (the zoo's AlexNet-ES) through the design
// family, print per-layer speedups, the Figure-9-style breakdowns for the
// interesting layers, and the energy picture under LPDDR4.
package main

import (
	"fmt"
	"log"

	"bittactical/internal/arch"
	"bittactical/internal/energy"
	"bittactical/internal/memory"
	"bittactical/internal/nn"
	"bittactical/internal/sched"
	"bittactical/internal/sim"
)

func main() {
	m, err := nn.BuildModel("AlexNet-ES", nn.DefaultZoo())
	if err != nil {
		log.Fatal(err)
	}
	acts := m.GenerateActs(7)
	lws, err := m.Lowered(16, acts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.1fM MACs, %.0f%% weight sparsity\n\n",
		m.Name, float64(m.TotalMACs())/1e6, m.WeightSparsity()*100)

	cfgs := []arch.Config{
		arch.DaDianNaoPP(),
		arch.NewTCL(sched.T(2, 5), arch.TCLp),
		arch.NewTCL(sched.T(2, 5), arch.TCLe),
	}

	// Per-layer speedups.
	fmt.Printf("%-8s %12s %14s %14s\n", "layer", "dense cyc", "TCLp speedup", "TCLe speedup")
	var totals [3]int64
	var dense int64
	for li, lw := range lws {
		var row [3]int64
		for ci, cfg := range cfgs {
			r := sim.SimulateLayer(cfg, lw)
			row[ci] = r.Cycles
			totals[ci] += r.Cycles
			if ci == 0 {
				dense += r.DenseCycles
			}
		}
		fmt.Printf("%-8s %12d %13.2fx %13.2fx\n", m.Layers[li].Name, row[0],
			float64(row[0])/float64(row[1]), float64(row[0])/float64(row[2]))
	}
	fmt.Printf("%-8s %12d %13.2fx %13.2fx\n\n", "total", totals[0],
		float64(totals[0])/float64(totals[1]), float64(totals[0])/float64(totals[2]))

	// Energy under LPDDR4-3200.
	tech, _ := memory.TechByName("LPDDR4-3200")
	k := energy.Defaults65nm()
	fmt.Printf("%-22s %10s %10s %10s %12s\n", "config", "logic uJ", "onchip uJ", "offchip uJ", "efficiency")
	var base float64
	for _, cfg := range cfgs {
		var sum energy.Breakdown
		for _, lw := range lws {
			r := sim.SimulateLayer(cfg, lw)
			sum.Add(energy.Price(cfg, r.Activity, memory.LayerTraffic(cfg, lw), tech, k))
		}
		if base == 0 {
			base = sum.TotalPJ()
		}
		fmt.Printf("%-22s %10.1f %10.1f %10.1f %11.2fx\n", cfg.Name,
			sum.LogicPJ*1e-6, sum.OnChipPJ*1e-6, sum.OffChipPJ*1e-6, base/sum.TotalPJ())
	}

	// Where does TCLe's time go? (Figure 9-style census for the whole net.)
	var bd sim.Breakdown
	for _, lw := range lws {
		bd.Add(sim.SimulateLayer(cfgs[2], lw).BackEnd)
	}
	tot := float64(bd.Total())
	fmt.Printf("\nTCLe lane-time census: useful %.0f%%, column sync %.0f%%, tile sync %.0f%%, "+
		"A-zero %.0f%%, W-zero %.0f%%, both-zero %.0f%%\n",
		100*float64(bd.Useful)/tot, 100*float64(bd.ColumnSync)/tot,
		100*float64(bd.TileSync)/tot, 100*float64(bd.AZero)/tot,
		100*float64(bd.WZero)/tot, 100*float64(bd.BothZero)/tot)
}
